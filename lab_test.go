package preexec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// longWorkload builds a memory-bound gather loop big enough that its
// baseline simulation takes several wall-clock seconds — long enough to
// observe mid-simulation cancellation.
func longWorkload(iters int64) *Program {
	b := NewBuilder("longloop")
	const rI, rN, rA, rV, rC = Reg(1), Reg(2), Reg(3), Reg(4), Reg(5)
	b.MovI(rI, 0)
	b.MovI(rN, iters)
	b.Label("top")
	b.MulI(rA, rI, 40503)
	b.AndI(rA, rA, (1<<18)-1)
	b.ShlI(rA, rA, 3)
	b.Load(rV, rA, 0)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(make([]int64, 1<<18))
	return b.MustBuild()
}

// TestLabCancellationMidSimulation starts an Analyze whose baseline
// simulation alone would run for several seconds, cancels it shortly after
// launch, and requires a prompt ctx.Err() return.
func TestLabCancellationMidSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	lab := New()
	prog := longWorkload(200_000)

	type outcome struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		_, err := lab.Analyze(ctx, prog)
		done <- outcome{err, time.Since(start)}
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()

	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("Analyze returned %v, want context.Canceled", out.err)
		}
		if out.elapsed > 5*time.Second {
			t.Errorf("cancellation took %v, want prompt return", out.elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Analyze did not return after cancellation")
	}

	// A pre-cancelled context must short-circuit every entry point.
	if _, err := lab.AnalyzeBenchmark(ctx, "gap"); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeBenchmark on cancelled ctx: %v", err)
	}
	if _, err := lab.Figure2(ctx, []string{"gap"}); !errors.Is(err, context.Canceled) {
		t.Errorf("Figure2 on cancelled ctx: %v", err)
	}
}

// TestLabSharesPreparations is the prepare-count probe of the acceptance
// criteria: two different figure entry points over the same benchmark
// through one Lab must prepare it exactly once.
func TestLabSharesPreparations(t *testing.T) {
	ctx := context.Background()
	var events []Event
	lab := New(WithObserver(func(ev Event) { events = append(events, ev) }))
	names := []string{"gap"}

	if _, err := lab.Figure2(ctx, names); err != nil {
		t.Fatal(err)
	}
	afterFirst := lab.StagePrepares(StagePrepared)
	if afterFirst != 1 {
		t.Fatalf("Figure2 performed %d prepares, want 1", afterFirst)
	}

	if _, err := lab.ED2Study(ctx, names); err != nil {
		t.Fatal(err)
	}
	if got := lab.StagePrepares(StagePrepared); got != afterFirst {
		t.Errorf("second figure performed %d additional prepares, want 0", got-afterFirst)
	}

	// A study over the same benchmark also rides the store.
	if _, err := lab.AnalyzeBenchmark(ctx, "gap"); err != nil {
		t.Fatal(err)
	}
	if got := lab.StagePrepares(StagePrepared); got != afterFirst {
		t.Errorf("AnalyzeBenchmark re-prepared (%d total prepares)", got)
	}

	var hits int
	for _, ev := range events {
		if ev.Kind == EventPrepareCached {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no prepare-cached events observed")
	}
}

// TestLabConfigIsolation: different configurations must not alias in the
// artifact store.
func TestLabConfigIsolation(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.CPU.Hier.MemLatency = 100
	lab := New(WithConfig(cfg))
	s1, err := lab.AnalyzeBenchmark(ctx, "gap")
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := DefaultConfig()
	cfg2.CPU.Hier.MemLatency = 300
	lab2 := New(WithConfig(cfg2))
	s2, err := lab2.AnalyzeBenchmark(ctx, "gap")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Baseline().Cycles == s2.Baseline().Cycles {
		t.Error("different memory latencies produced identical baselines (config aliasing?)")
	}
}

// TestCampaignPartialResults: one bad benchmark must not discard the rest.
// Unknown names are rejected up front nowadays, so the runtime failure is
// injected through the deadlock guard: a cycle budget that gap's baseline
// (~400k cycles) fits under but mcf's (~1M cycles) exceeds.
func TestCampaignPartialResults(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.CPU.MaxCycles = 600_000
	lab := New(WithConfig(cfg), WithParallelism(2))
	rep, err := lab.RunCampaign(ctx, []string{"gap", "mcf"}, []Target{TargetL})
	if err != nil {
		t.Fatalf("campaign returned %v; per-benchmark errors belong in the report", err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("campaign entries = %d, want 2", len(rep.Benchmarks))
	}
	if rep.Failed() != 1 {
		t.Fatalf("failed = %d, want 1: %+v", rep.Failed(), rep.Benchmarks)
	}
	good, bad := rep.Benchmarks[0], rep.Benchmarks[1]
	if good.Name != "gap" || good.Error != "" || good.Baseline == nil || len(good.Runs) != 1 {
		t.Errorf("good entry malformed: %+v", good)
	}
	if bad.Name != "mcf" || bad.Error == "" || bad.Baseline != nil {
		t.Errorf("bad entry malformed: %+v", bad)
	}
	if rep.Err() == nil || !strings.Contains(rep.Err().Error(), "mcf") {
		t.Errorf("joined error = %v", rep.Err())
	}

	// The joined error survives a JSON round-trip via the Error strings.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded CampaignReport
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Err() == nil || !strings.Contains(decoded.Err().Error(), "mcf") {
		t.Errorf("decoded joined error = %v", decoded.Err())
	}
	if decoded.Render() != rep.Render() {
		t.Error("campaign render changed across the JSON round-trip")
	}
}

// TestCampaignCancelled: a cancelled campaign still returns a renderable
// report in which never-run benchmarks count as failures.
func TestCampaignCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lab := New()
	rep, err := lab.RunCampaign(ctx, []string{"gap", "twolf"}, []Target{TargetL})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled campaign returned no report")
	}
	if rep.Failed() != 2 {
		t.Errorf("failed = %d, want 2 (never-run benchmarks are failures): %+v", rep.Failed(), rep.Benchmarks)
	}
	if out := rep.Render(); !strings.Contains(out, "not run") {
		t.Errorf("render of cancelled campaign: %q", out)
	}
	if rep.Err() == nil {
		t.Error("cancelled campaign must carry per-benchmark errors")
	}
}

// TestObserverProgressEvents: campaigns report bounded-pool progress.
func TestObserverProgressEvents(t *testing.T) {
	ctx := context.Background()
	var benchDone []Event
	lab := New(WithParallelism(1), WithObserver(func(ev Event) {
		if ev.Kind == EventBenchDone {
			benchDone = append(benchDone, ev)
		}
	}))
	if _, err := lab.RunCampaign(ctx, []string{"gap", "twolf"}, []Target{TargetL}); err != nil {
		t.Fatal(err)
	}
	if len(benchDone) != 2 {
		t.Fatalf("bench-done events = %d, want 2", len(benchDone))
	}
	for _, ev := range benchDone {
		if ev.Total != 2 || ev.Done < 1 || ev.Done > 2 {
			t.Errorf("bad progress event: %+v", ev)
		}
	}
}

// TestLabRejectsBadBenchmarkNames: every fan-out entry point must reject
// unknown and silently-duplicated benchmark names up front with one error
// listing the valid set — no partial work, no per-benchmark failure deep in
// a long run.
func TestLabRejectsBadBenchmarkNames(t *testing.T) {
	ctx := context.Background()
	lab := New()
	entryPoints := map[string]func([]string) error{
		"RunCampaign": func(names []string) error {
			_, err := lab.RunCampaign(ctx, names, []Target{TargetL})
			return err
		},
		"Figure2":  func(names []string) error { _, err := lab.Figure2(ctx, names); return err },
		"Figure3":  func(names []string) error { _, err := lab.Figure3(ctx, names); return err },
		"Table3":   func(names []string) error { _, err := lab.Table3(ctx, names); return err },
		"Figure4":  func(names []string) error { _, err := lab.Figure4(ctx, names); return err },
		"Figure5":  func(names []string) error { _, err := lab.Figure5(ctx, SweepIdleFactor, names); return err },
		"ED2Study": func(names []string) error { _, err := lab.ED2Study(ctx, names); return err },
		"Sweep": func(names []string) error {
			_, err := lab.Sweep(ctx, Grid{Benchmarks: names, Targets: []Target{TargetL}})
			return err
		},
	}
	for name, call := range entryPoints {
		err := call([]string{"gap", "nonesuch"})
		if err == nil || !strings.Contains(err.Error(), "nonesuch") || !strings.Contains(err.Error(), "bzip2") {
			t.Errorf("%s(unknown): err = %v, want unknown-name error listing valid benchmarks", name, err)
		}
		err = call([]string{"gap", "gap"})
		if err == nil || !strings.Contains(err.Error(), "duplicated") {
			t.Errorf("%s(duplicate): err = %v, want duplicate-name error", name, err)
		}
	}
	if lab.StagePrepares(StagePrepared) != 0 {
		t.Errorf("rejected calls still prepared %d benchmarks", lab.StagePrepares(StagePrepared))
	}
}

// reportJSON renders a small Figure 3 report for the JSON tests.
func figure3Fixture(t *testing.T) *Figure3Report {
	t.Helper()
	rep, err := New().Figure3(context.Background(), []string{"gap"})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReportJSONRoundTrip: the structured reports must round-trip through
// encoding/json without loss (acceptance criterion), and render identically
// from the decoded form.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := figure3Fixture(t)
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Figure3Report
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("report changed across round-trip:\n%s\nvs\n%s", raw, raw2)
	}
	if decoded.Render() != rep.Render() {
		t.Error("rendered output changed across round-trip")
	}
}

// jsonKeyPaths returns the sorted set of key paths in a JSON document —
// the schema shape, independent of values.
func jsonKeyPaths(raw []byte) ([]string, error) {
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	set := map[string]bool{}
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, sub := range x {
				p := prefix + "." + k
				set[p] = true
				walk(p, sub)
			}
		case []any:
			for _, sub := range x {
				walk(prefix+"[]", sub)
			}
		}
	}
	walk("$", doc)
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// TestReportSchemaGolden pins the JSON report schema: the set of key paths
// emitted for Figure 3 must match the committed golden file, so schema
// changes are explicit (regenerate with -update).
func TestReportSchemaGolden(t *testing.T) {
	rep := figure3Fixture(t)
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := jsonKeyPaths(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(paths, "\n") + "\n"

	golden := filepath.Join("testdata", "figure3_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("report JSON schema drifted from %s (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// ExampleLab demonstrates the Lab façade end-to-end on the smallest
// benchmark (compile-only documentation example).
func ExampleLab() {
	ctx := context.Background()
	lab := New(WithParallelism(2))
	study, err := lab.AnalyzeBenchmark(ctx, "gap")
	if err != nil {
		panic(err)
	}
	run, err := study.Run(ctx, TargetP)
	if err != nil {
		panic(err)
	}
	fmt.Println(run.SpeedupPct > 0)
	// Output: true
}
