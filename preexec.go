// Package preexec is the public API of the reproduction of "Energy-
// Effectiveness of Pre-Execution and Energy-Aware P-Thread Selection"
// (Petric & Roth, ISCA 2005).
//
// The package wraps the internal substrates — a micro-ISA with a program
// builder, a functional interpreter, a cycle-level multithreaded out-of-
// order simulator with DDMT pre-execution, a Wattch-style energy model, a
// Fields-style critical-path analyzer, a backward slicer, and the
// PTHSEL/PTHSEL+E selection frameworks — behind a small façade:
//
//	prog := preexec.Benchmark("mcf")              // or build your own
//	study, _ := preexec.Analyze(prog, preexec.DefaultConfig())
//	sel := study.Select(preexec.TargetP)          // ED-targeted p-threads
//	res, _ := study.Measure(sel)
//	fmt.Println(res.SpeedupPct, res.EnergySavePct)
//
// The experiment entry points (Figure2, Figure3, Table3, Figure4, Figure5)
// regenerate the paper's evaluation artifacts.
package preexec

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/pthsel"
	"repro/internal/trace"
)

// Re-exported core types. The micro-ISA types are aliased so custom
// workloads can be written against this package alone.
type (
	// Config parameterizes the processor, hierarchy, energy model and
	// selection framework.
	Config = experiments.Config
	// Target selects the optimization objective (latency, energy, ED, ED²).
	Target = pthsel.Target
	// Result is one simulation's outcome.
	Result = cpu.Result
	// TargetRun couples a selection with its measured run and derived
	// percentages.
	TargetRun = experiments.TargetRun
	// BenchResult is a benchmark evaluated under several targets.
	BenchResult = experiments.BenchResult
	// PThread is a static pre-execution thread (DDMT model).
	PThread = cpu.PThread
	// Selection is the output of the selection framework.
	Selection = pthsel.Selection
	// Program is an executable workload (code + initial data image).
	Program = isa.Program
	// Builder assembles custom workload programs.
	Builder = isa.Builder
	// Inst is a single micro-ISA instruction.
	Inst = isa.Inst
	// Reg identifies an architectural register (R0 is hardwired zero).
	Reg = isa.Reg
)

// Selection targets, named as in the paper: O (original flat-cost PTHSEL),
// L (criticality-based latency), E (energy), P (ED), P2 (ED²).
const (
	TargetO  = pthsel.TargetO
	TargetL  = pthsel.TargetL
	TargetE  = pthsel.TargetE
	TargetP  = pthsel.TargetP
	TargetP2 = pthsel.TargetP2
)

// DefaultConfig returns the paper's configuration: 6-wide 15-stage core,
// 128-entry ROB, 80 reservation stations, 8 contexts, 32K/16K/256K caches,
// 200-cycle memory, 5% idle energy factor, 2048-instruction slicing window
// and 64-instruction p-threads.
func DefaultConfig() Config { return experiments.DefaultConfig() }

// NewBuilder starts a custom workload program.
func NewBuilder(name string) *Builder { return isa.NewBuilder(name) }

// Benchmarks lists the nine SPEC2000-like synthetic workloads.
func Benchmarks() []string { return program.Names() }

// Benchmark builds a named synthetic workload on its Train input.
// It panics on an unknown name; use Benchmarks for the list.
func Benchmark(name string) *Program {
	bm, err := program.ByName(name)
	if err != nil {
		panic(err)
	}
	return bm.Build(program.Train)
}

// Study owns everything needed to select and measure p-threads for one
// program: its trace, profile, slice trees, criticality curves and baseline
// simulation.
type Study struct {
	cfg  Config
	prep *experiments.Prepared
}

// Analyze traces, profiles and baselines a custom program under cfg.
func Analyze(prog *Program, cfg Config) (*Study, error) {
	prep, err := prepareProgram(prog, cfg)
	if err != nil {
		return nil, err
	}
	return &Study{cfg: cfg, prep: prep}, nil
}

// AnalyzeBenchmark is Analyze for a named built-in workload.
func AnalyzeBenchmark(name string, cfg Config) (*Study, error) {
	prep, err := experiments.Prepare(name, cfg.MeasureInput, cfg)
	if err != nil {
		return nil, err
	}
	return &Study{cfg: cfg, prep: prep}, nil
}

// Baseline returns the unoptimized simulation result.
func (s *Study) Baseline() *Result { return s.prep.Baseline }

// Select runs PTHSEL/PTHSEL+E under the given target.
func (s *Study) Select(target Target) *Selection {
	return pthsel.Select(s.prep.Trace, s.prep.Prof, s.prep.Trees, s.prep.Params, target)
}

// Measure simulates the program with the selection's p-threads installed
// and derives the paper's metrics against the study's baseline.
func (s *Study) Measure(sel *Selection) (*TargetRun, error) {
	res, err := cpu.Run(s.cfg.CPU, s.prep.Trace, sel.PThreads)
	if err != nil {
		return nil, err
	}
	return experiments.Derive(sel, s.prep.Baseline, res), nil
}

// Run is Select followed by Measure.
func (s *Study) Run(target Target) (*TargetRun, error) {
	return s.Measure(s.Select(target))
}

// prepareProgram adapts experiments.Prepare for an ad-hoc program.
func prepareProgram(prog *Program, cfg Config) (*experiments.Prepared, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	tr, err := trace.Run(prog)
	if err != nil {
		return nil, fmt.Errorf("preexec: %w", err)
	}
	return experiments.PrepareTrace(prog.Name, tr, cfg)
}

// RunBenchmark evaluates one named workload under the given targets with
// ideal (same-run) profiling, as in the paper's primary study.
func RunBenchmark(name string, targets []Target, cfg Config) (*BenchResult, error) {
	return experiments.RunBenchmark(name, targets, cfg)
}

// Experiment entry points: each returns the rendered table for one of the
// paper's figures (see EXPERIMENTS.md for paper-vs-measured values).
var (
	Figure2  = experiments.Figure2
	Table3   = experiments.Table3
	Figure4  = experiments.Figure4
	Figure5  = experiments.Figure5
	ED2Study = experiments.ED2Study
)

// Figure3 runs the primary study and returns its rendered tables.
func Figure3(names []string, cfg Config) (string, []*BenchResult, error) {
	return experiments.Figure3(names, cfg)
}
