// Package preexec is the public API of the reproduction of "Energy-
// Effectiveness of Pre-Execution and Energy-Aware P-Thread Selection"
// (Petric & Roth, ISCA 2005).
//
// The package wraps the internal substrates — a micro-ISA with a program
// builder, a functional interpreter, a cycle-level multithreaded out-of-
// order simulator with DDMT pre-execution, a Wattch-style energy model, a
// Fields-style critical-path analyzer, a backward slicer, and the
// PTHSEL/PTHSEL+E selection frameworks — behind a Lab engine:
//
//	lab := preexec.New()                            // functional options below
//	study, _ := lab.AnalyzeBenchmark(ctx, "mcf")
//	run, _ := study.Run(ctx, preexec.TargetP)       // ED-targeted p-threads
//	fmt.Println(run.SpeedupPct, run.EnergySavePct)
//
// A Lab owns a memoizing artifact store keyed by (benchmark, input, config
// fingerprint): every expensive preparation — trace, profile, slice trees,
// criticality curves, baseline simulation — happens at most once per engine,
// so regenerating several figures over the same benchmark suite performs
// O(benchmarks) preparations instead of O(figures × benchmarks). Engines
// are configured with functional options:
//
//	lab := preexec.New(
//	        preexec.WithConfig(cfg),        // processor/selection configuration
//	        preexec.WithParallelism(4),     // bounded campaign worker pool
//	        preexec.WithObserver(func(ev preexec.Event) { log.Println(ev.Kind, ev.Bench) }),
//	)
//
// Every entry point takes a context.Context that is honored mid-simulation:
// cancelling the context aborts even a multi-billion-cycle run promptly.
//
// The experiment entry points (Figure2, Figure3, Table3, Figure4, Figure5,
// ED2Study, RunCampaign) regenerate the paper's evaluation artifacts as
// structured, JSON-marshalable Report values; call Render on a report for
// the human-readable table (see EXPERIMENTS.md for paper-vs-measured
// values and the report schema).
//
// Beyond the paper's nine built-in workloads, the seeded workload generator
// opens the rest of the memory-behaviour space: a WorkloadSpec declares a
// family (pointer-chase, hash-probe, tree-walk, blocked-stream,
// branchy-parser), a seed and knobs, and Lab.RegisterSpecs turns specs into
// benchmarks usable everywhere names are (see also Grid.Workloads and
// GenAxis for sweeping generator knobs like configuration knobs):
//
//	names, _ := lab.RegisterSpecs(preexec.WorkloadSpec{Family: preexec.FamilyPointerChase, Seed: 7})
//	rep, _ := lab.RunCampaign(ctx, names, []preexec.Target{preexec.TargetP})
//
// # Observability probes
//
// A Lab exposes counters that pin its caching guarantees in tests and let
// servers report cache health: StagePrepares(stage) counts cold executions
// of one preparation pipeline stage (the per-stage reuse guarantee — a
// swept knob rebuilds only the stages that read it); StoreStats snapshots
// every stage's request outcomes (cold, cached, shared in-flight, disk
// load) plus the disk tier's counters; DiskStoreErr reports whether a
// requested disk store opened. Prepares, the original whole-preparation
// counter, is deprecated in favor of StagePrepares(StagePrepared).
//
// # Migration from the pre-Lab API
//
// The package previously exposed free functions that re-prepared each
// benchmark per call and returned pre-rendered strings. The mapping:
//
//	Benchmark(name) (panics)          -> lab.Benchmark(name) (returns error)
//	Analyze(prog, cfg)                -> lab.Analyze(ctx, prog)
//	AnalyzeBenchmark(name, cfg)       -> lab.AnalyzeBenchmark(ctx, name)
//	study.Select(target)              -> study.Select(ctx, target)
//	study.Measure(sel)                -> study.Measure(ctx, sel)
//	study.Run(target)                 -> study.Run(ctx, target)
//	RunBenchmark(name, targets, cfg)  -> lab.RunCampaign(ctx, []string{name}, targets)
//	Figure2(names, cfg) (string)      -> lab.Figure2(ctx, names) (*Figure2Report)
//	Figure3(names, cfg) (string, ...) -> lab.Figure3(ctx, names) (*Figure3Report)
//	Table3(names, cfg)                -> lab.Table3(ctx, names) (*Table3Report)
//	Figure4(names, cfg)               -> lab.Figure4(ctx, names) (*Figure4Report)
//	Figure5(axis, names, cfg)         -> lab.Figure5(ctx, axis, names) (*Figure5Report)
//	ED2Study(names, cfg)              -> lab.ED2Study(ctx, names) (*ED2Report)
//
// The configuration moves from per-call arguments to the engine
// (WithConfig); the rendered string of any figure is now report.Render().
package preexec

import (
	"context"
	"fmt"

	"repro/internal/artifactdisk"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/program/gen"
	"repro/internal/pthsel"
	"repro/internal/trace"
)

// Re-exported core types. The micro-ISA types are aliased so custom
// workloads can be written against this package alone.
type (
	// Config parameterizes the processor, hierarchy, energy model and
	// selection framework.
	Config = experiments.Config
	// Engine selects the simulation engine (Config.CPU.Engine); see the
	// EngineEvent, EngineScan and EngineBatched constants and ParseEngine.
	Engine = cpu.Engine
	// Target selects the optimization objective (latency, energy, ED, ED²).
	Target = pthsel.Target
	// Result is one simulation's outcome.
	Result = cpu.Result
	// TargetRun couples a selection with its measured run and derived
	// percentages.
	TargetRun = experiments.TargetRun
	// BenchResult is a benchmark evaluated under several targets.
	BenchResult = experiments.BenchResult
	// PThread is a static pre-execution thread (DDMT model).
	PThread = cpu.PThread
	// Selection is the output of the selection framework.
	Selection = pthsel.Selection
	// Program is an executable workload (code + initial data image).
	Program = isa.Program
	// Builder assembles custom workload programs.
	Builder = isa.Builder
	// Inst is a single micro-ISA instruction.
	Inst = isa.Inst
	// Reg identifies an architectural register (R0 is hardwired zero).
	Reg = isa.Reg

	// Event is a progress notification delivered to a Lab's observer.
	Event = experiments.Event
	// EventKind classifies an Event.
	EventKind = experiments.EventKind
	// SweepAxis identifies a Figure 5 sensitivity axis.
	SweepAxis = experiments.SweepAxis
	// Stage identifies one stage of the staged preparation pipeline
	// (trace → profile → problems → slices/curves, trace → baseline →
	// params); see Lab.StagePrepares.
	Stage = experiments.Stage
	// Grid declares a multi-axis sensitivity sweep (cartesian product of
	// axes × benchmarks × targets); see Lab.Sweep.
	Grid = experiments.Grid
	// Axis is one named dimension of a sweep Grid.
	Axis = experiments.Axis
	// AxisPoint is one point on an Axis: a label plus the configuration
	// mutation realizing it.
	AxisPoint = experiments.AxisPoint
	// StoreStats is a Lab's artifact-store observability snapshot: per-stage
	// request outcomes plus, when a disk store is attached, the spill tier's
	// counters (see Lab.StoreStats).
	StoreStats = experiments.StoreStats
	// StageStoreStats is one pipeline stage's request-outcome counters.
	StageStoreStats = experiments.StageStoreStats
	// DiskStoreStats is the on-disk spill tier's counter snapshot.
	DiskStoreStats = artifactdisk.Stats
	// DAGReport is a sweep grid's scheduled stage DAG — nodes annotated
	// with projected cost and cold/cached/spill status — as planned by the
	// critical-path scheduler (see Lab.SweepDAG; DOT renders Graphviz).
	DAGReport = experiments.DAGReport
	// DAGNode is one node of a DAGReport.
	DAGNode = experiments.DAGNode
	// DAGEdge is one dependency edge of a DAGReport.
	DAGEdge = experiments.DAGEdge

	// WorkloadSpec declares one generated synthetic workload: a memory-
	// behaviour family, a seed, and knobs for working-set size, chain depth,
	// problem-load count, branch mix and ILP width. Specs are pure values:
	// equal specs always materialize bit-identical programs (see
	// Lab.RegisterSpecs).
	WorkloadSpec = gen.Spec
	// WorkloadFamily names a generator memory-behaviour family.
	WorkloadFamily = gen.Family
	// WorkloadPoint is one generated workload participating in a sweep Grid
	// (see Grid.Workloads).
	WorkloadPoint = experiments.WorkloadPoint
	// GenPoint is one point on a generator-knob axis: a label plus a spec
	// mutation (see GenAxis).
	GenPoint = experiments.GenPoint

	// Report is a structured, JSON-marshalable experiment artifact with a
	// Render method producing the human-readable table.
	Report = experiments.Report
	// Figure2Report holds Figure 2's time and energy breakdowns.
	Figure2Report = experiments.Figure2Report
	// Figure3Report holds Figure 3's improvements and diagnostics.
	Figure3Report = experiments.Figure3Report
	// Table3Report holds Table 3's model-validation ratios.
	Table3Report = experiments.Table3Report
	// Figure4Report holds the realistic-profiling results.
	Figure4Report = experiments.Figure4Report
	// Figure5Report holds one sensitivity sweep.
	Figure5Report = experiments.Figure5Report
	// SweepReport holds a declarative multi-axis sweep grid's results.
	SweepReport = experiments.SweepReport
	// SweepPointReport is one (benchmark, grid point) sweep evaluation.
	SweepPointReport = experiments.SweepPointReport
	// ED2Report holds the ED² study.
	ED2Report = experiments.ED2Report
	// CampaignReport holds a campaign's partial results and per-run errors.
	CampaignReport = experiments.CampaignReport
	// RunReport is the JSON-stable summary of one measured run.
	RunReport = experiments.RunReport
	// BaselineReport summarizes one unoptimized run.
	BaselineReport = experiments.BaselineReport
)

// Selection targets, named as in the paper: O (original flat-cost PTHSEL),
// L (criticality-based latency), E (energy), P (ED), P2 (ED²).
const (
	TargetO  = pthsel.TargetO
	TargetL  = pthsel.TargetL
	TargetE  = pthsel.TargetE
	TargetP  = pthsel.TargetP
	TargetP2 = pthsel.TargetP2
)

// Simulation engines. EngineEvent (the zero value) is the event-driven
// production engine; EngineScan is the bit-identical every-cycle reference
// engine; EngineBatched runs event-driven semantics and additionally opts
// sweeps into batched scheduling at the default batch width (see
// WithBatchWidth) — a single run under EngineBatched is exactly an
// EngineEvent run.
const (
	EngineEvent   = cpu.EngineEvent
	EngineScan    = cpu.EngineScan
	EngineBatched = cpu.EngineBatched
)

// ParseEngine parses an engine name as used by cmd/sweep's and cmd/labd's
// -engine flags: "event" (or the empty string), "scan" or "batched".
// Unknown names produce one error listing the valid engines.
func ParseEngine(s string) (Engine, error) { return cpu.ParseEngine(s) }

// Figure 5's sensitivity axes.
const (
	SweepIdleFactor = experiments.SweepIdleFactor
	SweepMemLatency = experiments.SweepMemLatency
	SweepL2Size     = experiments.SweepL2Size
)

// Generator workload families (see WorkloadSpec).
const (
	FamilyPointerChase  = gen.PointerChase
	FamilyHashProbe     = gen.HashProbe
	FamilyTreeWalk      = gen.TreeWalk
	FamilyBlockedStream = gen.BlockedStream
	FamilyBranchyParser = gen.BranchyParser
)

// WorkloadFamilies lists every generator family.
func WorkloadFamilies() []WorkloadFamily { return gen.Families() }

// ParseWorkloadSpec parses the generator's CLI spec grammar,
// family:seed[:knob=value,...] — e.g. "pointer-chase:7" or
// "hash-probe:42:ws=131072,loads=2,branch=30" — as used by cmd/sweep's
// -gen flag. Knob keys: ws, depth, loads, branch, ilp.
func ParseWorkloadSpec(s string) (WorkloadSpec, error) { return gen.Parse(s) }

// GenAxis expands a base workload spec through per-point mutations into the
// Workloads dimension of a sweep Grid, so generator knobs sweep exactly like
// configuration knobs:
//
//	g := preexec.Grid{
//	        Workloads: preexec.GenAxis(preexec.WorkloadSpec{Family: preexec.FamilyPointerChase, Seed: 1},
//	                preexec.GenPoint{Label: "d=500", Mutate: func(s *preexec.WorkloadSpec) { s.Depth = 500 }},
//	                preexec.GenPoint{Label: "d=2000", Mutate: func(s *preexec.WorkloadSpec) { s.Depth = 2000 }}),
//	        Axes: []preexec.Axis{preexec.GridAxis(preexec.SweepIdleFactor)},
//	}
func GenAxis(base WorkloadSpec, pts ...GenPoint) []WorkloadPoint {
	return experiments.GenAxis(base, pts...)
}

// Preparation pipeline stages, in dependency order (see Lab.StagePrepares).
const (
	StageTrace    = experiments.StageTrace
	StageProfile  = experiments.StageProfile
	StageProblems = experiments.StageProblems
	StageSlices   = experiments.StageSlices
	StageCurves   = experiments.StageCurves
	StageBaseline = experiments.StageBaseline
	StageParams   = experiments.StageParams
	StagePrepared = experiments.StagePrepared
)

// Stages lists every preparation pipeline stage in dependency order,
// StagePrepared last — the key set of Lab.StoreStats().Stages.
func Stages() []Stage { return experiments.Stages() }

// Observer event kinds.
const (
	EventPrepareStart  = experiments.EventPrepareStart
	EventPrepareDone   = experiments.EventPrepareDone
	EventPrepareCached = experiments.EventPrepareCached
	EventStageStart    = experiments.EventStageStart
	EventStageDone     = experiments.EventStageDone
	EventStageCached   = experiments.EventStageCached
	EventStageSpill    = experiments.EventStageSpill
	EventRunStart      = experiments.EventRunStart
	EventRunDone       = experiments.EventRunDone
	EventBenchDone     = experiments.EventBenchDone
	EventPointDone     = experiments.EventPointDone
)

// DefaultConfig returns the paper's configuration: 6-wide 15-stage core,
// 128-entry ROB, 80 reservation stations, 8 contexts, 32K/16K/256K caches,
// 200-cycle memory, 5% idle energy factor, 2048-instruction slicing window
// and 64-instruction p-threads.
func DefaultConfig() Config { return experiments.DefaultConfig() }

// NewBuilder starts a custom workload program.
func NewBuilder(name string) *Builder { return isa.NewBuilder(name) }

// Benchmarks lists every registered workload, sorted by name: the nine
// SPEC2000-like built-ins plus any generated workloads registered through
// RegisterSpecs or sweep grids.
func Benchmarks() []string { return program.Names() }

// PaperBenchmarks returns the paper's nine benchmarks in the paper's own
// presentation order, independent of what else is registered.
func PaperBenchmarks() []string { return experiments.PaperBenchmarks() }

// ParseTarget parses a selection-target name (O, L, E, P, P2) as used in
// the paper's figures and this package's CLIs.
func ParseTarget(s string) (Target, error) {
	for _, t := range []Target{TargetO, TargetL, TargetE, TargetP, TargetP2} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown target %q (want O, L, E, P or P2)", s)
}

// Option configures a Lab.
type Option func(*Lab)

// WithConfig sets the engine's configuration (default: DefaultConfig).
func WithConfig(cfg Config) Option { return func(l *Lab) { l.cfg = cfg } }

// WithParallelism bounds the worker pool used by figures and campaigns
// (default and <= 0: GOMAXPROCS).
func WithParallelism(n int) Option { return func(l *Lab) { l.parallelism = n } }

// WithObserver registers a progress callback. Events are delivered
// serialized (never concurrently) but from worker goroutines.
func WithObserver(fn func(Event)) Option { return func(l *Lab) { l.observe = fn } }

// WithBatchWidth sets the engine's sweep batch width: with k >= 2, sweep
// measurements whose grid points resolved to identical prepared artifacts
// (the same trace) are partitioned into batches of up to k and advanced
// through one shared streaming pass over the trace's column chunks instead
// of k separate passes. Batched results are bit-identical to serial runs;
// points measured this way carry Batched/BatchWidth in the sweep report.
// k <= 1 keeps every measurement serial, as do reference scan-engine
// points. Batch width is scheduling state, not configuration — it never
// enters artifact fingerprints, so batched and serial sweeps share every
// cached stage.
func WithBatchWidth(k int) Option { return func(l *Lab) { l.batchWidth = k } }

// WithScheduling toggles cost-modeled critical-path scheduling of sweep and
// campaign fan-out (default: enabled). Enabled, the engine expands every
// pending (benchmark × stage) chain into a dependency DAG before fanning
// out, projects each node's remaining critical-path cost from an EWMA cost
// model fed by observed build times, and has the worker pool pull ready
// nodes longest-critical-path-first — speculatively pre-building stages the
// grid will need ahead of the first point that demands them. Disabled,
// workers claim points in naive bench-major grid order. Results and report
// row order are byte-identical either way; only build order and cold-sweep
// wall-clock change. Like batch width, scheduling is never part of an
// artifact fingerprint.
func WithScheduling(enabled bool) Option { return func(l *Lab) { l.scheduling = &enabled } }

// WithMappedSpill toggles the zero-copy mmap path for warm trace loads
// from a disk store (default: enabled). Enabled, a spilled trace in the
// page-aligned v2 format is memory-mapped read-only and its columns alias
// the mapping directly — per-chunk CRC and PC-range verification at open,
// no decode, no copy, and N processes sharing one store directory share
// one page-cache copy. Disabled — or on platforms without mmap — warm
// trace loads fall back to the chunk-parallel v2 heap decode (still ahead
// of the serial v1 path). Results are byte-identical either way; like
// batch width and scheduling, the switch never enters an artifact
// fingerprint.
func WithMappedSpill(enabled bool) Option { return func(l *Lab) { l.mappedSpill = &enabled } }

// WithDiskStore attaches an on-disk content-addressed spill tier at dir
// behind the engine's in-memory artifact store, with a byte budget
// (maxBytes <= 0: unlimited; least-recently-used artifacts are evicted over
// budget). Stage artifacts are persisted under their content fingerprints,
// so a fresh Lab pointed at a populated directory satisfies every heavy
// preparation stage with a verified disk load instead of a rebuild — the
// restart-warm guarantee behind the lab daemon. Corrupt files are
// quarantined and rebuilt, never fatal. A directory that cannot be opened
// surfaces through Lab.DiskStoreErr (the Lab still works, uncached).
func WithDiskStore(dir string, maxBytes int64) Option {
	return func(l *Lab) {
		l.diskDir = dir
		l.diskMax = maxBytes
		l.diskSet = true
	}
}

// WithEventTag returns a context whose engine events carry tag, letting one
// observer attribute events from concurrent entry points over a shared Lab
// (the daemon routes events to jobs with it). Events emitted from inside a
// build shared between concurrent callers carry the computing caller's tag.
func WithEventTag(ctx context.Context, tag string) context.Context {
	return experiments.WithEventTag(ctx, tag)
}

// Lab is the experiment engine: it owns the artifact store (one preparation
// per benchmark × input × configuration, shared by every figure, sweep,
// study and campaign run through it) and the bounded worker pool. A Lab is
// safe for concurrent use.
type Lab struct {
	cfg         Config
	parallelism int
	observe     func(Event)
	batchWidth  int
	scheduling  *bool // nil: default (enabled)
	mappedSpill *bool // nil: default (enabled)
	run         *experiments.Runner
	cfgErr      error

	diskDir string
	diskMax int64
	diskSet bool
	diskErr error
}

// New creates a Lab engine. An out-of-enum engine in the configuration is
// caught here: every entry point then fails with one error listing the
// valid engines (also available up front through ConfigErr).
func New(opts ...Option) *Lab {
	l := &Lab{cfg: experiments.DefaultConfig()}
	for _, opt := range opts {
		opt(l)
	}
	l.cfgErr = experiments.ValidateEngine(l.cfg.CPU.Engine)
	l.run = experiments.NewRunner(l.cfg, l.parallelism, l.observe)
	l.run.SetBatchWidth(l.batchWidth)
	if l.scheduling != nil {
		l.run.SetScheduling(*l.scheduling)
	}
	if l.mappedSpill != nil {
		l.run.SetMappedSpill(*l.mappedSpill)
	}
	if l.diskSet {
		l.diskErr = l.run.AttachDiskStore(l.diskDir, l.diskMax)
	}
	return l
}

// ConfigErr reports whether the engine's configuration validated at
// construction; entry points of a Lab with a non-nil ConfigErr return it.
// Servers check it at startup to reject a bad engine configuration loudly
// instead of failing on the first job.
func (l *Lab) ConfigErr() error { return l.cfgErr }

// DiskStoreErr reports whether WithDiskStore's directory could be opened;
// nil when no disk store was requested. A Lab with a failed disk store
// still works — every preparation is simply cold — so servers check this at
// startup to fail loudly instead of silently running uncached.
func (l *Lab) DiskStoreErr() error { return l.diskErr }

// Config returns the engine's configuration.
func (l *Lab) Config() Config { return l.cfg }

// Prepares reports how many whole-config preparations the engine has
// assembled cold; the artifact store keeps it at one per (benchmark, input,
// configuration) regardless of how many figures run. Sweep points count one
// each even when every underlying pipeline stage was cached.
//
// Deprecated: Prepares is StagePrepares(StagePrepared) by definition; use
// StagePrepares, which generalizes it to every pipeline stage and observes
// the per-stage reuse beneath whole preparations.
func (l *Lab) Prepares() int64 { return l.run.StagePrepares(experiments.StagePrepared) }

// StagePrepares reports how many cold executions of one preparation
// pipeline stage the engine has performed (generalizing Prepares, which
// equals StagePrepares(StagePrepared)). It is the observable behind the
// per-stage reuse guarantee: a mutated knob re-fingerprints only the
// stages that read it, so a 3-point sweep along an axis a stage never
// looks at (e.g. idle factor or memory latency for trace/profile/slices)
// executes that stage exactly once per benchmark.
func (l *Lab) StagePrepares(stage Stage) int64 { return l.run.StagePrepares(stage) }

// StoreStats snapshots the engine's artifact-store counters, generalizing
// StagePrepares: per stage, how many requests executed it cold, were served
// from a completed in-memory entry, shared another caller's in-flight
// build, or were satisfied by a disk-tier load — plus the disk store's own
// counters when one is attached. The cold counts are the observable behind
// the build-once guarantee; the spill-load counts behind the restart-warm
// guarantee.
func (l *Lab) StoreStats() StoreStats { return l.run.StoreStats() }

// RegisterSpecs materializes and registers generated workloads, returning
// their canonical benchmark names in argument order. Registered names work
// everywhere built-in names do — studies, campaigns, figures, sweep grids —
// and their preparations flow through the same staged artifact store, keyed
// by the spec's content fingerprint. Registration is global (the benchmark
// registry is shared by every Lab) and idempotent: re-registering an
// identical spec, even concurrently from campaign workers, is a no-op.
//
//	names, err := lab.RegisterSpecs(
//	        preexec.WorkloadSpec{Family: preexec.FamilyPointerChase, Seed: 1},
//	        preexec.WorkloadSpec{Family: preexec.FamilyHashProbe, Seed: 2, ProblemLoads: 2},
//	)
//	rep, err := lab.RunCampaign(ctx, names, []preexec.Target{preexec.TargetP})
func (l *Lab) RegisterSpecs(specs ...WorkloadSpec) ([]string, error) {
	return gen.Register(specs...)
}

// Benchmark builds a named synthetic workload on its Train input. Unknown
// names return an error; use Benchmarks for the list.
func (l *Lab) Benchmark(name string) (*Program, error) {
	bm, err := program.ByName(name)
	if err != nil {
		return nil, err
	}
	return bm.Build(program.Train), nil
}

// Study owns everything needed to select and measure p-threads for one
// program: its trace, profile, slice trees, criticality curves and baseline
// simulation.
type Study struct {
	cfg  Config
	prep *experiments.Prepared
}

// Analyze traces, profiles and baselines a custom program.
func (l *Lab) Analyze(ctx context.Context, prog *Program) (*Study, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	tr, err := trace.Run(prog)
	if err != nil {
		return nil, fmt.Errorf("preexec: %w", err)
	}
	prep, err := experiments.PrepareTrace(ctx, prog.Name, tr, l.cfg)
	if err != nil {
		return nil, err
	}
	return &Study{cfg: l.cfg, prep: prep}, nil
}

// AnalyzeBenchmark is Analyze for a named built-in workload. The
// preparation goes through the artifact store, so repeated studies and
// figures over the same benchmark share one.
func (l *Lab) AnalyzeBenchmark(ctx context.Context, name string) (*Study, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	prep, err := l.run.Prepare(ctx, name, l.cfg.MeasureInput, l.cfg)
	if err != nil {
		return nil, err
	}
	return &Study{cfg: l.cfg, prep: prep}, nil
}

// Baseline returns the unoptimized simulation result.
func (s *Study) Baseline() *Result { return s.prep.Baseline }

// Select runs PTHSEL/PTHSEL+E under the given target.
func (s *Study) Select(ctx context.Context, target Target) (*Selection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return pthsel.Select(s.prep.Trace, s.prep.Prof, s.prep.Trees, s.prep.Params, target), nil
}

// Measure simulates the program with the selection's p-threads installed
// and derives the paper's metrics against the study's baseline. The context
// is honored mid-simulation; the run goes through the engine's simulator
// pool, so repeated measurements reuse one fully-grown simulator.
func (s *Study) Measure(ctx context.Context, sel *Selection) (*TargetRun, error) {
	res, err := experiments.Simulate(ctx, s.cfg.CPU, s.prep.Trace, sel.PThreads)
	if err != nil {
		return nil, err
	}
	return experiments.Derive(sel, s.prep.Baseline, res), nil
}

// Run is Select followed by Measure.
func (s *Study) Run(ctx context.Context, target Target) (*TargetRun, error) {
	sel, err := s.Select(ctx, target)
	if err != nil {
		return nil, err
	}
	return s.Measure(ctx, sel)
}

// RunCampaign evaluates benchmarks × targets on the bounded worker pool
// with partial-result reporting: one failing benchmark does not discard the
// others. The returned error is non-nil only for context cancellation;
// per-benchmark failures are carried inside the report (see
// CampaignReport.Err).
func (l *Lab) RunCampaign(ctx context.Context, names []string, targets []Target) (*CampaignReport, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.Campaign(ctx, names, targets)
}

// Figure2 reproduces the paper's Figure 2 breakdowns for the given
// benchmarks.
func (l *Lab) Figure2(ctx context.Context, names []string) (*Figure2Report, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.Figure2(ctx, names)
}

// Figure3 reproduces the paper's primary study (Figure 3).
func (l *Lab) Figure3(ctx context.Context, names []string) (*Figure3Report, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.Figure3(ctx, names)
}

// Table3 reproduces the paper's model-validation table.
func (l *Lab) Table3(ctx context.Context, names []string) (*Table3Report, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.Table3(ctx, names)
}

// Figure4 reproduces the realistic-profiling experiment (§5.3).
func (l *Lab) Figure4(ctx context.Context, names []string) (*Figure4Report, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.Figure4(ctx, names)
}

// Figure5 reproduces one sensitivity sweep (Figure 5).
func (l *Lab) Figure5(ctx context.Context, axis SweepAxis, names []string) (*Figure5Report, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.Figure5(ctx, axis, names)
}

// ED2Study reproduces the §5.1 ED² discussion.
func (l *Lab) ED2Study(ctx context.Context, names []string) (*ED2Report, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.ED2Study(ctx, names)
}

// Sweep evaluates a declarative multi-axis sensitivity grid: the cartesian
// product of the grid's axes, for every benchmark, under every target
// (default: the paper's L, E and P). Points are prepared through the staged
// artifact store, so a grid's points share every upstream artifact their
// configurations agree on — a 3-point idle-factor or memory-latency sweep
// performs one trace, one profile and one slice-tree build per benchmark,
// not three. Per-point progress is streamed to the observer as
// EventPointDone events.
//
// With a batch width installed (WithBatchWidth, or EngineBatched in the
// configuration), measurements sharing one prepared trace additionally ride
// shared streaming passes in batches of up to k, bit-identical to serial
// evaluation; such points carry Batched/BatchWidth in the report.
//
//	rep, err := lab.Sweep(ctx, preexec.Grid{
//	        Axes:       []preexec.Axis{preexec.GridAxis(preexec.SweepIdleFactor), preexec.GridAxis(preexec.SweepMemLatency)},
//	        Benchmarks: []string{"mcf", "twolf"},
//	})
func (l *Lab) Sweep(ctx context.Context, g Grid) (*SweepReport, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.Sweep(ctx, g)
}

// SweepDAG plans a grid without running it: the stage dependency DAG the
// critical-path scheduler would execute, with every node annotated by its
// projected status against the engine's current stores (cold / cached /
// spill / measure), its cost estimate and its remaining critical-path cost.
// The report's DOT method renders Graphviz (cmd/report -dag; the daemon's
// GET /v1/jobs/{id}/dag). Planning registers the grid's workloads but
// builds nothing and touches no counters.
func (l *Lab) SweepDAG(g Grid) (*DAGReport, error) {
	if l.cfgErr != nil {
		return nil, l.cfgErr
	}
	return l.run.SweepDAG(g)
}

// GridAxis converts a Figure 5 sensitivity axis into a declarative sweep
// axis (the paper's three points).
func GridAxis(axis SweepAxis) Axis { return experiments.GridAxis(axis) }

// ParseSweepAxis parses a sensitivity-axis name ("idle", "mem", "l2", or
// the canonical axis names) as used by cmd/sweep and the paper's figures.
func ParseSweepAxis(s string) (SweepAxis, error) { return experiments.ParseSweepAxis(s) }

// Figure5Benchmarks returns the paper's per-axis benchmark triples.
func Figure5Benchmarks(axis SweepAxis) []string { return experiments.Figure5Benchmarks(axis) }

// Table3Benchmarks returns the paper's validation benchmarks.
func Table3Benchmarks() []string { return experiments.Table3Benchmarks() }
