// Energysweep: explore pre-execution's latency/energy trade-off by
// retargeting PTHSEL+E across the composition weight (latency → ED² → ED →
// energy) and across idle energy factors — the paper's central lever
// (§5.4): a high idle factor turns pre-execution into an energy-reduction
// tool; at 0% no E-p-thread survives selection.
package main

import (
	"context"
	"fmt"
	"log"

	preexec "repro"
)

func main() {
	ctx := context.Background()
	targets := []preexec.Target{preexec.TargetL, preexec.TargetP2, preexec.TargetP, preexec.TargetE}

	fmt.Println("Retargeting across the composition weight (twolf, 5% idle factor):")
	fmt.Printf("%-8s %10s %10s %10s %8s\n", "target", "speedup%", "energy%", "ED%", "pinst%")
	lab := preexec.New()
	study, err := lab.AnalyzeBenchmark(ctx, "twolf")
	if err != nil {
		log.Fatal(err)
	}
	for _, tgt := range targets {
		run, err := study.Run(ctx, tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %+10.1f %+10.1f %+10.1f %8.1f\n",
			tgt, run.SpeedupPct, run.EnergySavePct, run.EDSavePct, run.PInstIncPct)
	}

	fmt.Println("\nIdle energy factor sweep (vpr.route, E-p-threads), as a declarative grid:")
	// One engine, one grid: the staged artifact store keys every pipeline
	// stage on only the config fields it reads, so the three idle-factor
	// points share the benchmark's trace, profile, slice trees and even its
	// baseline simulation — only the selection params re-derive per point.
	sweepLab := preexec.New()
	rep, err := sweepLab.Sweep(ctx, preexec.Grid{
		Axes:       []preexec.Axis{preexec.GridAxis(preexec.SweepIdleFactor)},
		Benchmarks: []string{"vpr.route"},
		Targets:    []preexec.Target{preexec.TargetE},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "idle", "#pthreads", "speedup%", "energy%", "ED%")
	for _, pt := range rep.Points {
		r := pt.Runs[0]
		fmt.Printf("%-8s %10d %+10.1f %+10.1f %+10.1f\n",
			pt.Point(), r.PThreads, r.SpeedupPct, r.EnergySavePct, r.EDSavePct)
	}
	fmt.Printf("\nThe grid ran %d baseline simulation and %d trace for its 3 points\n",
		sweepLab.StagePrepares(preexec.StageBaseline), sweepLab.StagePrepares(preexec.StageTrace))
	fmt.Println("(energy knobs never re-simulate). At a 0% idle factor EREDagg is zero,")
	fmt.Println("every EADVagg is negative, and no E-p-thread survives — the paper's")
	fmt.Println("observation exactly.")
}
