// Energysweep: explore pre-execution's latency/energy trade-off by
// retargeting PTHSEL+E across the composition weight (latency → ED² → ED →
// energy) and across idle energy factors — the paper's central lever
// (§5.4): a high idle factor turns pre-execution into an energy-reduction
// tool; at 0% no E-p-thread survives selection.
package main

import (
	"context"
	"fmt"
	"log"

	preexec "repro"
)

func main() {
	ctx := context.Background()
	targets := []preexec.Target{preexec.TargetL, preexec.TargetP2, preexec.TargetP, preexec.TargetE}

	fmt.Println("Retargeting across the composition weight (twolf, 5% idle factor):")
	fmt.Printf("%-8s %10s %10s %10s %8s\n", "target", "speedup%", "energy%", "ED%", "pinst%")
	lab := preexec.New()
	study, err := lab.AnalyzeBenchmark(ctx, "twolf")
	if err != nil {
		log.Fatal(err)
	}
	for _, tgt := range targets {
		run, err := study.Run(ctx, tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %+10.1f %+10.1f %+10.1f %8.1f\n",
			tgt, run.SpeedupPct, run.EnergySavePct, run.EDSavePct, run.PInstIncPct)
	}

	fmt.Println("\nIdle energy factor sweep (vpr.route, E-p-threads):")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "idle", "#pthreads", "speedup%", "energy%", "ED%")
	for _, idle := range []float64{0, 0.05, 0.10} {
		cfg := preexec.DefaultConfig()
		cfg.CPU.Energy.IdleFactor = idle
		// One engine per configuration point: the artifact store keys on
		// the config fingerprint, so these do not alias.
		s, err := preexec.New(preexec.WithConfig(cfg)).AnalyzeBenchmark(ctx, "vpr.route")
		if err != nil {
			log.Fatal(err)
		}
		run, err := s.Run(ctx, preexec.TargetE)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.0f%% %9d %+10.1f %+10.1f %+10.1f\n",
			idle*100, len(run.Sel.PThreads), run.SpeedupPct, run.EnergySavePct, run.EDSavePct)
	}
	fmt.Println("\nAt a 0% idle factor EREDagg is zero, every EADVagg is negative, and")
	fmt.Println("no E-p-thread survives — the paper's observation exactly.")
}
