// Pointerchase: the paper's motivating hard case. A serial pointer chase
// cannot be helped by pre-execution (the p-thread's own chase is just as
// slow as the main thread's), and the criticality-based cost model is what
// keeps PTHSEL+E from wasting energy on it — while the gather loop in the
// same program is classic pre-execution territory.
//
// This example runs the mcf-like workload under the original flat-cost
// model (O) and the criticality model (L) and prints where the selected
// p-threads point.
package main

import (
	"context"
	"fmt"
	"log"

	preexec "repro"
)

func main() {
	ctx := context.Background()
	lab := preexec.New()
	study, err := lab.AnalyzeBenchmark(ctx, "mcf")
	if err != nil {
		log.Fatal(err)
	}
	base := study.Baseline()
	memShare := 100 * float64(base.TimeBreakdown[0]) / float64(base.Cycles)
	fmt.Printf("mcf baseline: IPC %.3f, %.0f%% of cycles waiting on memory (the paper's mcf is 92%%)\n",
		base.IPC(), memShare)

	for _, tgt := range []preexec.Target{preexec.TargetO, preexec.TargetL} {
		run, err := study.Run(ctx, tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s-p-threads: %d selected, avg length %.1f\n",
			tgt, len(run.Sel.PThreads), run.AvgPThreadLen)
		for _, pt := range run.Sel.PThreads {
			fmt.Printf("  trigger pc %3d -> target load pc %3d, %2d instructions, %d target(s)\n",
				pt.TriggerPC, pt.TargetPC, len(pt.Body), len(pt.Targets))
		}
		fmt.Printf("  speedup %+.1f%%  energy %+.1f%%  ED %+.1f%%  (%.0f%% useful spawns)\n",
			run.SpeedupPct, run.EnergySavePct, run.EDSavePct, run.UsefulPct)
	}

	fmt.Println("\nNote: no selected p-thread targets the chase loads — their slices are")
	fmt.Println("chains of L2-missing loads, so the estimated latency tolerance is zero")
	fmt.Println("and both models reject them; the gather loads carry all the benefit.")
}
