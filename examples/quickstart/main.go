// Quickstart: select ED-targeted p-threads for one benchmark and compare
// the pre-executed run against the unoptimized baseline.
package main

import (
	"context"
	"fmt"
	"log"

	preexec "repro"
)

func main() {
	ctx := context.Background()
	lab := preexec.New() // paper-default configuration

	study, err := lab.AnalyzeBenchmark(ctx, "gap")
	if err != nil {
		log.Fatal(err)
	}
	base := study.Baseline()
	fmt.Printf("baseline: %d cycles (IPC %.2f), %d L2 misses, %.0f energy units\n",
		base.Cycles, base.IPC(), base.DemandL2Misses, base.Energy.Total())

	// Select p-threads that optimize the energy-delay product (the paper's
	// P-p-threads) and measure them.
	run, err := study.Run(ctx, preexec.TargetP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ED-targeted pre-execution: %d p-threads, avg body %.1f instructions\n",
		len(run.Sel.PThreads), run.AvgPThreadLen)
	fmt.Printf("  speedup %+.1f%%   energy %+.1f%%   ED %+.1f%%\n",
		run.SpeedupPct, run.EnergySavePct, run.EDSavePct)
	fmt.Printf("  miss coverage %.0f%% full + %.0f%% partial, %.0f%% useful spawns\n",
		run.FullCovPct, run.PartCovPct, run.UsefulPct)
}
