// Custombench: write your own workload in the micro-ISA, then let the full
// pipeline — profiling, slicing, criticality analysis, PTHSEL+E selection,
// and the timing simulator — find and evaluate p-threads for it.
//
// The workload is a B-tree-ish lookup loop: a key stream (sequential)
// indexes a fanout table (cached) and then a leaf array (>L2, random): the
// leaf load is the problem load, and its address is computable from the key
// several iterations ahead.
package main

import (
	"context"
	"fmt"
	"log"

	preexec "repro"
)

func buildWorkload() *preexec.Program {
	const (
		rI    = preexec.Reg(1)
		rN    = preexec.Reg(2)
		rKey  = preexec.Reg(3)
		rT    = preexec.Reg(4)
		rLeaf = preexec.Reg(5)
		rA    = preexec.Reg(6)
		rV    = preexec.Reg(7)
		rC    = preexec.Reg(8)
		rAcc  = preexec.Reg(9)
		rW    = preexec.Reg(10)
	)
	const (
		keys      = 1 << 14 // 128KB key stream
		fanout    = 64
		leafWords = 1 << 18 // 2MB of leaves
		steps     = 8000
	)
	// Data segment: keys, a fanout table of leaf-region offsets, leaves.
	mem := make([]int64, keys+fanout+leafWords)
	seed := int64(12345)
	next := func(n int64) int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := (seed >> 33) % n
		if v < 0 {
			v += n
		}
		return v
	}
	for i := 0; i < keys; i++ {
		mem[i] = next(int64(leafWords / 8))
	}
	for f := 0; f < fanout; f++ {
		mem[keys+f] = int64((keys + fanout + f*(leafWords/fanout)) * 8)
	}
	for w := keys + fanout; w < len(mem); w++ {
		mem[w] = next(1000)
	}

	b := preexec.NewBuilder("btree-lookup")
	b.MovI(rI, 0)
	b.MovI(rN, steps)
	b.Label("top")
	b.AndI(rT, rI, keys-1)
	b.ShlI(rT, rT, 3)
	b.Load(rKey, rT, 0) // key stream (covered by the stride prefetcher)
	b.AndI(rT, rKey, fanout-1)
	b.ShlI(rT, rT, 3)
	b.Load(rLeaf, rT, int64(keys*8)) // fanout table (always cached)
	b.AndI(rA, rKey, (leafWords/fanout)-8)
	b.ShlI(rA, rA, 3)
	b.Add(rA, rA, rLeaf)
	b.Load(rV, rA, 0) // leaf: the problem load (random, >L2)
	b.Add(rAcc, rAcc, rV)
	b.CmpLTI(rC, rV, 80)
	b.BrZ(rC, "skip")
	b.AddI(rAcc, rAcc, 7)
	b.Label("skip")
	for k := 0; k < 6; k++ {
		b.AddI(rW, rW, 1)
	}
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

func main() {
	ctx := context.Background()
	prog := buildWorkload()
	study, err := preexec.New().Analyze(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}
	base := study.Baseline()
	fmt.Printf("custom workload %q: %d committed instructions, IPC %.3f, %d L2 misses\n",
		prog.Name, base.Committed, base.IPC(), base.DemandL2Misses)

	for _, tgt := range []preexec.Target{preexec.TargetL, preexec.TargetE} {
		run, err := study.Run(ctx, tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s-p-threads: %d selected, speedup %+.1f%%, energy %+.1f%%, ED %+.1f%%\n",
			tgt, len(run.Sel.PThreads), run.SpeedupPct, run.EnergySavePct, run.EDSavePct)
	}
}
