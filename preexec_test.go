package preexec

import (
	"context"
	"testing"
)

func TestFacadeStudyFlow(t *testing.T) {
	ctx := context.Background()
	lab := New()
	study, err := lab.AnalyzeBenchmark(ctx, "gap")
	if err != nil {
		t.Fatal(err)
	}
	if study.Baseline().Cycles <= 0 {
		t.Fatal("no baseline")
	}
	sel, err := study.Select(ctx, TargetP)
	if err != nil {
		t.Fatal(err)
	}
	run, err := study.Measure(ctx, sel)
	if err != nil {
		t.Fatal(err)
	}
	if run.SpeedupPct <= 0 {
		t.Errorf("P-p-threads on gap must speed up, got %+.1f%%", run.SpeedupPct)
	}
	run2, err := study.Run(ctx, TargetP)
	if err != nil {
		t.Fatal(err)
	}
	if run2.SpeedupPct != run.SpeedupPct {
		t.Error("Run must equal Select+Measure")
	}
}

func TestFacadeCustomProgram(t *testing.T) {
	ctx := context.Background()
	b := NewBuilder("tiny")
	const rI, rN, rA, rV, rC = Reg(1), Reg(2), Reg(3), Reg(4), Reg(5)
	b.MovI(rI, 0)
	b.MovI(rN, 6000)
	b.Label("top")
	b.MulI(rA, rI, 40503)
	b.AndI(rA, rA, (1<<18)-1)
	b.ShlI(rA, rA, 3)
	b.Load(rV, rA, 0)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(make([]int64, 1<<18))
	prog := b.MustBuild()

	study, err := New().Analyze(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	run, err := study.Run(ctx, TargetL)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Sel.PThreads) == 0 {
		t.Error("no p-threads selected for a random-gather loop")
	}
	if run.SpeedupPct <= 0 {
		t.Errorf("expected speedup, got %+.1f%%", run.SpeedupPct)
	}
}

func TestFacadeBenchmarkList(t *testing.T) {
	lab := New()
	// Benchmarks() is the full name-sorted registry (built-ins plus any
	// registered generated workloads); the paper's nine must all be present,
	// and PaperBenchmarks() must stay exactly the pinned nine.
	listed := map[string]bool{}
	for _, n := range Benchmarks() {
		listed[n] = true
	}
	paper := PaperBenchmarks()
	if len(paper) != 9 {
		t.Fatalf("paper benchmarks = %v", paper)
	}
	for _, n := range paper {
		if !listed[n] {
			t.Errorf("paper benchmark %s missing from Benchmarks()", n)
		}
	}
	p, err := lab.Benchmark("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mcf.train" {
		t.Errorf("benchmark name = %q", p.Name)
	}
	if _, err := lab.Benchmark("nonesuch"); err == nil {
		t.Error("unknown benchmark must return an error")
	}
}

func TestFacadeAnalyzeInvalidProgram(t *testing.T) {
	if _, err := New().Analyze(context.Background(), &Program{Name: "empty"}); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestParseTarget(t *testing.T) {
	for _, want := range []Target{TargetO, TargetL, TargetE, TargetP, TargetP2} {
		got, err := ParseTarget(want.String())
		if err != nil || got != want {
			t.Errorf("ParseTarget(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParseTarget("Q"); err == nil {
		t.Error("unknown target accepted")
	}
}
