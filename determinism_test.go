package preexec

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/program"
	"repro/internal/pthsel"
)

// TestResultJSONDeterminism pins the simulator's determinism contract at
// the byte level: the same configuration and trace must yield byte-identical
// JSON Results across repeated runs — both for the baseline and for a
// p-thread-augmented run (which exercises spawn ordering, per-p-thread stat
// maps and prefetch crediting).
func TestResultJSONDeterminism(t *testing.T) {
	ctx := context.Background()
	cfg := experiments.DefaultConfig()
	prep, err := experiments.Prepare(ctx, "gap", program.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	marshalRun := func() []byte {
		run, err := experiments.RunTarget(ctx, prep, prep, pthsel.TargetL, cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(run.Res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	marshalBase := func() []byte {
		res, err := cpu.RunContext(ctx, cfg.CPU, prep.Trace, nil)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if !bytes.Equal(marshalBase(), marshalBase()) {
		t.Error("baseline Result JSON differs across repeated runs")
	}
	if !bytes.Equal(marshalRun(), marshalRun()) {
		t.Error("target-L Result JSON differs across repeated runs")
	}
}

// stripWallClock zeroes the only legitimately nondeterministic fields in a
// campaign report (measured simulator throughput) so the remainder can be
// compared byte-for-byte.
func stripWallClock(rep *CampaignReport) {
	for i := range rep.Benchmarks {
		for j := range rep.Benchmarks[i].Runs {
			rep.Benchmarks[i].Runs[j].SimCyclesPerSec = 0
		}
	}
}

// TestCampaignDeterministicAcrossParallelism runs the same campaign on a
// serial engine and on an 8-wide worker pool: every simulated number must be
// byte-identical (each benchmark simulates single-threaded; the pool only
// reorders whole benchmarks, and reports are assembled in input order).
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	names := PaperBenchmarks()[:4]
	targets := []Target{TargetL}
	campaign := func(par int) []byte {
		rep, err := New(WithParallelism(par)).RunCampaign(ctx, names, targets)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		stripWallClock(rep)
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	serial := campaign(1)
	wide := campaign(8)
	if !bytes.Equal(serial, wide) {
		t.Errorf("campaign JSON differs between WithParallelism(1) and WithParallelism(8)\nserial: %s\nwide:   %s", serial, wide)
	}
}

// TestWorkerSimReuseDeterministicUnderParallelism pins the zero-allocation
// run-reuse path: every timing simulation goes through the engine's
// simulator pool, so an 8-wide campaign has workers concurrently grabbing,
// Resetting and returning pooled simulators whose arrays were grown by
// earlier, unrelated runs. Repeating the campaign on the same Lab (second
// pass guaranteed to reuse warm simulators) and on a serial Lab must yield
// byte-identical reports. The CI race job runs this under -race, making it
// the data-race sentinel for per-worker simulator reuse.
func TestWorkerSimReuseDeterministicUnderParallelism(t *testing.T) {
	ctx := context.Background()
	names := PaperBenchmarks()[:4]
	targets := []Target{TargetL, TargetE}
	run := func(lab *Lab) []byte {
		rep, err := lab.RunCampaign(ctx, names, targets)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		stripWallClock(rep)
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	wide := New(WithParallelism(8))
	first := run(wide)
	second := run(wide) // warm pool: simulators reused across benchmarks
	serial := run(New(WithParallelism(1)))
	if !bytes.Equal(first, second) {
		t.Error("repeated campaign on a warm simulator pool diverged from the cold pass")
	}
	if !bytes.Equal(first, serial) {
		t.Error("8-wide pooled-simulator campaign diverged from serial execution")
	}
}
